"""EDM host network stack as a discrete-event process (§3.2.1).

One :class:`EdmHostNic` per node.  Compute-side operations (read / write /
rmw) enter the message queue, receive a message id, and leave as /M*/ or
/N/ transfers after the published TX cycle counts.  The RX side processes
grants, forwarded requests (at memory nodes, where the forwarded RREQ acts
as the implicit first grant), and data chunks, with the published RX cycle
counts.  Memory nodes own a :class:`~repro.memctrl.MemoryController` and
execute requests atomically.

Completion semantics follow the paper: a read completes when the last RRES
byte reaches the compute node; a write completes when the last WREQ byte
reaches the memory node (writes are one-sided).  A
:class:`CompletionRouter` carries the cross-node callback plumbing the
simulation needs for the latter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.core.clock import PCS_CYCLE_NS
from repro.core.messages import (
    Grant,
    MemoryMessage,
    MessageType,
    Notification,
    make_rmwreq,
    make_rreq,
    make_rres,
    make_wreq,
)
from repro.core.opcodes import RmwOpcode
from repro.errors import HostError
from repro.host import cycles
from repro.host.state import (
    MessageIdAllocator,
    MessageState,
    MessageStateTable,
    NotificationRateLimiter,
)
from repro.host.wire import (
    TransferKind,
    WireTransfer,
    chunk_transfer,
    notify_transfer,
    request_transfer,
)
from repro.memctrl.controller import MemoryController
from repro.sim.context import SimContext
from repro.sim.engine import Process, Simulator
from repro.sim.link import Link

CompletionCallback = Callable[["Completion"], None]


@dataclass
class Completion:
    """Delivered to the issuing application when an operation finishes."""

    message: MemoryMessage
    completed_at: float
    latency_ns: float
    data: bytes = b""
    timed_out: bool = False


class CompletionRouter:
    """Routes completion callbacks across nodes (simulation plumbing)."""

    def __init__(self) -> None:
        self._callbacks: Dict[int, Tuple[CompletionCallback, float]] = {}

    def register(self, uid: int, callback: CompletionCallback, created_at: float) -> None:
        if uid in self._callbacks:
            raise HostError(f"completion for message uid {uid} already registered")
        self._callbacks[uid] = (callback, created_at)

    def fire(
        self,
        uid: int,
        message: MemoryMessage,
        now: float,
        data: bytes = b"",
        timed_out: bool = False,
    ) -> None:
        entry = self._callbacks.pop(uid, None)
        if entry is None:
            return  # already completed (e.g. race with a timeout)
        callback, created_at = entry
        callback(
            Completion(
                message=message,
                completed_at=now,
                latency_ns=now - created_at,
                data=data,
                timed_out=timed_out,
            )
        )

    def pending(self) -> int:
        return len(self._callbacks)


@dataclass
class HostConfig:
    """Per-host parameters."""

    chunk_bytes: int = 256
    max_active_per_pair: int = 3
    cycle_ns: float = PCS_CYCLE_NS
    read_timeout_ns: Optional[float] = None


class EdmHostNic(Process):
    """The EDM host NIC: compute API + memory-node service path."""

    def __init__(
        self,
        sim: "Simulator | SimContext",
        node_id: int,
        router: CompletionRouter,
        config: HostConfig = HostConfig(),
    ) -> None:
        super().__init__(sim, f"nic{node_id}")
        self.node_id = node_id
        self.router = router
        self.config = config
        self.uplink: Optional[Link] = None
        # Outbound: messages this node initiated, keyed by (dst, own id).
        self.state_table = MessageStateTable()
        # Serving: RRES messages this node generates for peers' requests,
        # keyed by (requester, requester's id) — a separate id namespace.
        self.serving_table = MessageStateTable()
        self.ids = MessageIdAllocator()
        self.limiter = NotificationRateLimiter(config.max_active_per_pair)
        self.controller: Optional[MemoryController] = None
        self._timeout_handles: Dict[int, object] = {}
        self.messages_sent = 0
        self.messages_completed = 0

    # ------------------------------------------------------------------ #
    # wiring                                                             #
    # ------------------------------------------------------------------ #

    def attach_uplink(self, link: Link) -> None:
        self.uplink = link

    def attach_memory(self, controller: MemoryController) -> None:
        """Make this node a memory node."""
        self.controller = controller

    def _cycles(self, count: int) -> float:
        return count * self.config.cycle_ns

    def _send(self, transfer: WireTransfer, after_ns: float) -> None:
        if self.uplink is None:
            raise HostError(f"node {self.node_id} has no uplink attached")
        self.post(after_ns, lambda: self.uplink.send(transfer, transfer.wire_bytes))

    # ------------------------------------------------------------------ #
    # compute-side API (§2.3's four message types)                       #
    # ------------------------------------------------------------------ #

    def read(
        self,
        dst: int,
        address: int,
        nbytes: int,
        on_complete: CompletionCallback,
    ) -> MemoryMessage:
        """Issue a remote read; RREQ doubles as the demand notification."""
        message_id = self.ids.allocate(dst)
        message = make_rreq(
            self.node_id, dst, address, nbytes,
            message_id=message_id, created_at=self.now,
        )
        self._launch_request(message, on_complete)
        return message

    def rmw(
        self,
        dst: int,
        address: int,
        opcode: RmwOpcode,
        args: Tuple[int, ...],
        on_complete: CompletionCallback,
    ) -> MemoryMessage:
        """Issue an atomic read-modify-write (§3.2.1)."""
        message_id = self.ids.allocate(dst)
        message = make_rmwreq(
            self.node_id, dst, address, opcode, args,
            message_id=message_id, created_at=self.now,
        )
        self._launch_request(message, on_complete)
        return message

    def write(
        self,
        dst: int,
        address: int,
        nbytes: int,
        on_complete: CompletionCallback,
    ) -> MemoryMessage:
        """Issue a remote write; sends an explicit /N/ and awaits grants."""
        message_id = self.ids.allocate(dst)
        message = make_wreq(
            self.node_id, dst, address, nbytes,
            message_id=message_id, created_at=self.now,
        )

        def _on_done(completion: Completion) -> None:
            # The write finished at the memory node: free this sender's
            # notification slot toward dst before surfacing the completion.
            self._release_limiter_slot(dst)
            on_complete(completion)

        self.router.register(message.uid, _on_done, self.now)
        self.state_table.add(
            dst, message_id,
            MessageState(message=message, completion_callback=on_complete),
        )
        if self.limiter.admit(message):
            self._send_notification(message)
        self.messages_sent += 1
        return message

    def _launch_request(
        self, message: MemoryMessage, on_complete: CompletionCallback
    ) -> None:
        self.router.register(message.uid, on_complete, self.now)
        self.state_table.add(
            message.dst, message.message_id,
            MessageState(message=message, completion_callback=on_complete),
        )
        if self.limiter.admit(message):
            self._send_request(message)
        self.messages_sent += 1
        if self.config.read_timeout_ns is not None:
            handle = self.schedule(
                self.config.read_timeout_ns,
                lambda: self._on_read_timeout(message),
            )
            self._timeout_handles[message.uid] = handle

    def _send_request(self, message: MemoryMessage) -> None:
        # 2 cycles: read message queue + create block / write state table.
        self._send(request_transfer(message), self._cycles(cycles.HOST_TX_REQUEST_CYCLES))

    def _send_notification(self, message: MemoryMessage) -> None:
        notification = Notification(
            src=message.src,
            dst=message.dst,
            message_id=message.message_id,
            size_bytes=message.size_bytes,
            notified_at=self.now,
            message_uid=message.uid,
        )
        self._send(
            notify_transfer(notification),
            self._cycles(cycles.HOST_TX_REQUEST_CYCLES),
        )

    def _on_read_timeout(self, message: MemoryMessage) -> None:
        """Deadlock guard (§3.3): reply NULL if the memory node never does."""
        self._timeout_handles.pop(message.uid, None)
        if not self.state_table.contains(message.dst, message.message_id):
            return
        self.state_table.remove(message.dst, message.message_id)
        self.ids.release(message.dst, message.message_id)
        self._release_limiter_slot(message.dst)
        self.router.fire(message.uid, message, self.now, data=b"", timed_out=True)

    # ------------------------------------------------------------------ #
    # RX path                                                            #
    # ------------------------------------------------------------------ #

    def on_wire(self, transfer: WireTransfer) -> None:
        """Entry point for transfers delivered by the switch egress link."""
        if transfer.kind == TransferKind.GRANT:
            assert transfer.grant is not None
            self._on_grant(transfer.grant)
        elif transfer.kind == TransferKind.REQUEST:
            assert transfer.message is not None
            self._on_forwarded_request(transfer.message)
        elif transfer.kind == TransferKind.DATA_CHUNK:
            assert transfer.message is not None
            self._on_data_chunk(transfer)
        else:
            raise HostError(f"host received unexpected transfer kind {transfer.kind}")

    # -- grants --------------------------------------------------------- #

    def _on_grant(self, grant: Grant) -> None:
        """A /G/ block: send the granted chunk of a pending WREQ or RRES."""
        delay = self._cycles(
            cycles.HOST_RX_GRANT_CYCLES
            + cycles.HOST_GRANT_QUEUE_READ_CYCLES
            + cycles.HOST_TX_DATA_CYCLES
        )
        self.schedule(delay, lambda: self._emit_chunk(grant))

    def _emit_chunk(self, grant: Grant) -> None:
        table = self.serving_table if grant.for_response else self.state_table
        state = table.get(grant.dst, grant.message_id)
        message = state.message
        if message.mtype == MessageType.RRES and not state.data_ready:
            # Memory still reading: hold the grant until data is buffered.
            state.pending_grants.append(grant)
            return
        offset = state.bytes_sent
        state.bytes_sent += grant.chunk_bytes
        final = state.bytes_sent >= message.size_bytes
        transfer = chunk_transfer(message, grant.chunk_bytes, offset, final)
        if self.uplink is None:
            raise HostError(f"node {self.node_id} has no uplink attached")
        self.uplink.send(transfer, transfer.wire_bytes)
        if final:
            # Sender-side state is done; receiver-side completion fires when
            # the last chunk lands.
            table.remove(grant.dst, grant.message_id)
            if message.mtype == MessageType.WREQ:
                self.ids.release(grant.dst, grant.message_id)

    # -- forwarded requests (memory node) ------------------------------- #

    def _on_forwarded_request(self, message: MemoryMessage) -> None:
        """An RREQ/RMWREQ forwarded by the switch = implicit first grant."""
        if self.controller is None:
            raise HostError(
                f"node {self.node_id} received a {message.mtype.value} but has "
                f"no memory controller attached"
            )
        proc = self._cycles(cycles.HOST_RX_RREQ_CYCLES)
        self.schedule(proc, lambda: self._service_request(message))

    def _service_request(self, message: MemoryMessage) -> None:
        assert self.controller is not None
        result, done_at = self.controller.execute_message(message, self.now)
        rres = make_rres(message, created_at=self.now)
        state = MessageState(message=rres, data_ready=False)
        self.serving_table.add(rres.dst, rres.message_id, state)
        wait = max(0.0, done_at - self.now)
        self.schedule(wait, lambda: self._rres_data_ready(rres, result.data))

    def _rres_data_ready(self, rres: MemoryMessage, data: bytes) -> None:
        state = self.serving_table.get(rres.dst, rres.message_id)
        state.data_ready = True
        # The forwarded request acted as the grant for the first chunk
        # (§3.1.1 step 4): emit it now.  4 grant-queue cycles + 3 TX cycles.
        first_chunk = min(self.config.chunk_bytes, rres.size_bytes)
        delay = self._cycles(
            cycles.HOST_GRANT_QUEUE_READ_CYCLES + cycles.HOST_TX_DATA_CYCLES
        )
        grant = Grant(
            src=rres.src,
            dst=rres.dst,
            message_id=rres.message_id,
            chunk_bytes=first_chunk,
            granted_at=self.now,
            message_uid=rres.uid,
            for_response=True,
        )
        self.schedule(delay, lambda: self._emit_chunk_if_pending(state, grant))

    def _emit_chunk_if_pending(self, state: MessageState, grant: Grant) -> None:
        self._emit_chunk(grant)
        while state.pending_grants:
            self._emit_chunk(state.pending_grants.pop(0))

    # -- data chunks ----------------------------------------------------- #

    def _on_data_chunk(self, transfer: WireTransfer) -> None:
        proc = self._cycles(cycles.HOST_RX_DATA_CYCLES)
        self.schedule(proc, lambda: self._absorb_chunk(transfer))

    def _absorb_chunk(self, transfer: WireTransfer) -> None:
        message = transfer.message
        assert message is not None
        if message.mtype == MessageType.WREQ:
            self._absorb_write_chunk(transfer)
        elif message.mtype == MessageType.RRES:
            self._absorb_response_chunk(transfer)
        else:
            raise HostError(f"unexpected data chunk of type {message.mtype.value}")

    def _absorb_write_chunk(self, transfer: WireTransfer) -> None:
        """WREQ data landing at the memory node."""
        if self.controller is None:
            raise HostError(
                f"node {self.node_id} received WREQ data but has no memory"
            )
        message = transfer.message
        assert message is not None
        if transfer.is_final_chunk:
            self.controller.write(
                message.address, b"\x00" * message.size_bytes, self.now
            )
            self.messages_completed += 1
            self.router.fire(message.uid, message, self.now)

    def _absorb_response_chunk(self, transfer: WireTransfer) -> None:
        """RRES data landing back at the compute node."""
        message = transfer.message
        assert message is not None
        peer = message.src  # the memory node
        if not self.state_table.contains(peer, message.message_id):
            return  # request already timed out
        state = self.state_table.get(peer, message.message_id)
        state.bytes_received += transfer.chunk_bytes
        if state.bytes_received >= message.size_bytes:
            original = state.message
            self.state_table.remove(peer, message.message_id)
            self.ids.release(peer, message.message_id)
            handle = self._timeout_handles.pop(original.uid, None)
            if handle is not None:
                handle.cancel()
            self._release_limiter_slot(peer)
            self.messages_completed += 1
            self.router.fire(
                original.uid, original, self.now, data=transfer.chunk_bytes * b"\x00"
            )

    # -- rate limiter plumbing ------------------------------------------- #

    def _release_limiter_slot(self, dst: int) -> None:
        backlogged = self.limiter.complete(dst)
        if backlogged is None:
            return
        if backlogged.mtype == MessageType.WREQ:
            self._send_notification(backlogged)
        else:
            self._send_request(backlogged)

    def notify_write_completed(self, dst: int) -> None:
        """Called by the cluster when one of our writes finished remotely."""
        self._release_limiter_slot(dst)
