"""EDM host network stack: NIC, state tables, rate limiting, wire units."""

from repro.host.nic import (
    Completion,
    CompletionRouter,
    EdmHostNic,
    HostConfig,
)
from repro.host.state import (
    MegaMessage,
    MessageIdAllocator,
    MessageState,
    MessageStateTable,
    NotificationRateLimiter,
    batch_for_destination,
)
from repro.host.wire import (
    TransferKind,
    WireTransfer,
    chunk_transfer,
    grant_transfer,
    notify_transfer,
    request_transfer,
)

__all__ = [
    "Completion",
    "CompletionRouter",
    "EdmHostNic",
    "HostConfig",
    "MegaMessage",
    "MessageIdAllocator",
    "MessageState",
    "MessageStateTable",
    "NotificationRateLimiter",
    "TransferKind",
    "WireTransfer",
    "batch_for_destination",
    "chunk_transfer",
    "grant_transfer",
    "notify_transfer",
    "request_transfer",
]
