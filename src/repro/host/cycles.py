"""Published cycle counts for EDM's host and switch datapaths (§3.2.1-§3.2.2).

Every constant here is a number stated in the paper; the latency models
(Table 1, Figure 5) and the DES stacks consume these so the reproduction's
unloaded numbers are the paper's numbers by construction.
"""

from __future__ import annotations

from repro.core.clock import PCS_CYCLE_NS

# -- host TX (§3.2.1) ------------------------------------------------------ #

#: Generating an /N/ or an RREQ /M*/ block: read message queue (1) + create
#: block while writing the state table in parallel (1).
HOST_TX_REQUEST_CYCLES = 2

#: Reading a grant from the grant queue: 4 cycles (RX->TX clock domain cross).
HOST_GRANT_QUEUE_READ_CYCLES = 4

#: Generating an /M*/ data block for an RRES/WREQ chunk: read state table (1)
#: + read data buffer (1) + create block (1).
HOST_TX_DATA_CYCLES = 3

# -- host RX (§3.2.1) ------------------------------------------------------ #

#: Processing a received /G/ block: parse (1) + add to grant queue (1).
HOST_RX_GRANT_CYCLES = 2

#: Processing a received RREQ /M*/ block: /G/-style processing + 1 extra
#: cycle to hand it to the memory controller.
HOST_RX_RREQ_CYCLES = HOST_RX_GRANT_CYCLES + 1

#: Processing a received RRES/WREQ /M*/ block: parse (1) + extract address
#: (1) + deliver to application/memory controller (1).
HOST_RX_DATA_CYCLES = 3

# -- switch (§3.2.2) ------------------------------------------------------- #

#: Generating a /G/ block at the switch.
SWITCH_TX_GRANT_CYCLES = 1

#: Identifying /N/, /G/, /M*/ blocks on receive (block-type check).
SWITCH_RX_CLASSIFY_CYCLES = 1

#: RX->TX circuit forwarding (clock-domain movement), no L2 processing.
SWITCH_FORWARD_CYCLES = 4


def ns(cycles: int, cycle_ns: float = PCS_CYCLE_NS) -> float:
    """Convert host/switch datapath cycles to nanoseconds."""
    return cycles * cycle_ns
