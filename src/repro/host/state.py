"""Host-side state: message state table, rate limiter, and batching (§3.2.1).

* The **message state table**, indexed by (destination, message id), holds
  the local buffer address for pending reads and the (remote address, data
  buffer) pair for pending writes/responses.
* The **rate limiter** enforces at most X active notifications per
  destination, which is what bounds the switch's per-port notification
  queues to X*N entries (§3.1.2).
* **Mega-message batching** folds several small pending messages to the
  same destination into one notification, reducing /N/ overhead (§3.1.2).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.core.messages import MemoryMessage
from repro.errors import HostError

StateKey = Tuple[int, int]  # (peer node id, message id)


class MessageState:
    """One entry of the message state table."""

    __slots__ = (
        "message", "local_address", "data_ready", "bytes_sent",
        "bytes_received", "completion_callback", "pending_grants",
    )

    def __init__(
        self,
        message: MemoryMessage,
        local_address: int = 0,
        data_ready: bool = False,
        bytes_sent: int = 0,
        bytes_received: int = 0,
        completion_callback: Optional[Callable[..., None]] = None,
        pending_grants: Optional[List[object]] = None,
    ) -> None:
        self.message = message
        self.local_address = local_address
        self.data_ready = data_ready
        self.bytes_sent = bytes_sent
        self.bytes_received = bytes_received
        self.completion_callback = completion_callback
        self.pending_grants = [] if pending_grants is None else pending_grants


class MessageStateTable:
    """Table indexed by <message destination, message id> (§3.2.1)."""

    def __init__(self) -> None:
        self._entries: Dict[StateKey, MessageState] = {}

    def add(self, peer: int, message_id: int, state: MessageState) -> None:
        key = (peer, message_id)
        if key in self._entries:
            raise HostError(f"state table already holds an entry for {key}")
        self._entries[key] = state

    def get(self, peer: int, message_id: int) -> MessageState:
        key = (peer, message_id)
        try:
            return self._entries[key]
        except KeyError as exc:
            raise HostError(f"no state table entry for {key}") from exc

    def contains(self, peer: int, message_id: int) -> bool:
        return (peer, message_id) in self._entries

    def find(self, peer: int, message_id: int) -> Optional[MessageState]:
        """Like :meth:`get` but returns None on a miss (hot-path lookup)."""
        return self._entries.get((peer, message_id))

    def remove(self, peer: int, message_id: int) -> MessageState:
        key = (peer, message_id)
        try:
            return self._entries.pop(key)
        except KeyError as exc:
            raise HostError(f"no state table entry for {key}") from exc

    def __len__(self) -> int:
        return len(self._entries)


class MessageIdAllocator:
    """Allocates the 8-bit per-destination message ids and recycles them."""

    def __init__(self, id_space: int = 256) -> None:
        self._free: Dict[int, Deque[int]] = {}
        self._id_space = id_space

    def allocate(self, peer: int) -> int:
        free = self._free.get(peer)
        if free is None:
            free = self._free[peer] = deque(range(self._id_space))
        if not free:
            raise HostError(
                f"message-id space exhausted toward peer {peer}; "
                f"complete some messages before issuing more"
            )
        return free.popleft()

    def release(self, peer: int, message_id: int) -> None:
        free = self._free.get(peer)
        if free is None:
            free = self._free[peer] = deque()
        free.append(message_id)


class NotificationRateLimiter:
    """Caps active notifications per destination at X (§3.1.2).

    Messages beyond the cap wait in a per-destination backlog and are
    released as earlier notifications complete.
    """

    def __init__(self, max_active: int = 3) -> None:
        if max_active <= 0:
            raise HostError(f"X must be positive, got {max_active}")
        self.max_active = max_active
        self._active: Dict[int, int] = {}
        self._backlog: Dict[int, Deque[MemoryMessage]] = {}

    def active_toward(self, dst: int) -> int:
        return self._active.get(dst, 0)

    def backlog_depth(self, dst: int) -> int:
        return len(self._backlog.get(dst, ()))

    def admit(self, message: MemoryMessage) -> bool:
        """Try to admit a message; False means it was backlogged."""
        if self.active_toward(message.dst) < self.max_active:
            self._active[message.dst] = self.active_toward(message.dst) + 1
            return True
        self._backlog.setdefault(message.dst, deque()).append(message)
        return False

    def complete(self, dst: int) -> Optional[MemoryMessage]:
        """Mark one active notification toward ``dst`` done.

        Returns a backlogged message that may now be admitted (already
        counted as active), or None.
        """
        active = self.active_toward(dst)
        if active <= 0:
            raise HostError(f"no active notifications toward {dst} to complete")
        backlog = self._backlog.get(dst)
        if backlog:
            return backlog.popleft()  # slot transfers to the backlogged message
        self._active[dst] = active - 1
        return None


@dataclass
class MegaMessage:
    """Several small messages to one destination batched under one
    notification (§3.1.2's "mega" message optimization)."""

    dst: int
    members: List[MemoryMessage] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        return sum(m.size_bytes for m in self.members)


def batch_for_destination(
    pending: List[MemoryMessage],
    dst: int,
    max_batch_bytes: int = 4096,
) -> Tuple[Optional[MegaMessage], List[MemoryMessage]]:
    """Fold pending small messages toward ``dst`` into one mega message.

    Returns (mega, leftovers).  Only write requests are batched — reads
    need no notification at all.
    """
    if max_batch_bytes <= 0:
        raise HostError(f"batch bound must be positive: {max_batch_bytes}")
    members: List[MemoryMessage] = []
    leftovers: List[MemoryMessage] = []
    total = 0
    for message in pending:
        if message.dst != dst:
            leftovers.append(message)
            continue
        if total + message.size_bytes <= max_batch_bytes:
            members.append(message)
            total += message.size_bytes
        else:
            leftovers.append(message)
    if not members:
        return None, leftovers
    return MegaMessage(dst=dst, members=members), leftovers
