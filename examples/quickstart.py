#!/usr/bin/env python3
"""Quickstart: remote memory access over an EDM fabric.

Builds the paper's testbed topology — a compute node and a memory node
connected through an EDM-capable switch (Figure 4) — then issues a remote
read, a remote write, and an atomic compare-and-swap, printing the fabric
latency of each and the Table 1 stack comparison.

Run:  python examples/quickstart.py
"""

from repro.fabrics.base import ClusterConfig
from repro.fabrics.edm import EdmCluster
from repro.core.opcodes import RmwOpcode
from repro.latency.table1 import format_table1
from repro.memctrl.dram import DramTiming


def main() -> None:
    # A 2-node, 25 Gbps cluster like the FPGA testbed.  Zero DRAM latency
    # isolates the *fabric* latency, which is what Table 1 reports.
    config = ClusterConfig(num_nodes=2, link_gbps=25.0, propagation_ns=10.0)
    cluster = EdmCluster(
        config,
        dram_timing=DramTiming(row_hit_ns=0.0, row_miss_ns=0.0, bandwidth_gbps=1e9),
    )
    compute = cluster.nic(0)
    results = {}

    compute.read(
        dst=1, address=0x1000, nbytes=64,
        on_complete=lambda c: results.__setitem__("read", c.latency_ns),
    )
    cluster.sim.run()

    compute.write(
        dst=1, address=0x2000, nbytes=64,
        on_complete=lambda c: results.__setitem__("write", c.latency_ns),
    )
    cluster.sim.run()

    compute.rmw(
        dst=1, address=0x3000, opcode=RmwOpcode.COMPARE_AND_SWAP,
        args=(0, 42),
        on_complete=lambda c: results.__setitem__("cas", c.latency_ns),
    )
    cluster.sim.run()

    print("EDM fabric latency (simulated 25 GbE testbed, unloaded):")
    print(f"  64 B remote read : {results['read']:8.2f} ns")
    print(f"  64 B remote write: {results['write']:8.2f} ns")
    print(f"  compare-and-swap : {results['cas']:8.2f} ns")
    print()
    print(format_table1())


if __name__ == "__main__":
    main()
