"""A 1024-node scale point — the sweep size the calendar kernel unlocks.

The paper evaluates a 144-node cluster (§4.3); the ROADMAP pushes toward
production scale.  This example runs the §4.3.1 microbenchmark on a
1024-node cluster for a receiver-driven (IRD) and a reactive (DCTCP)
fabric, printing completion statistics and the simulator's events/sec so
the throughput at scale is visible.

Run::

    PYTHONPATH=src python examples/scale_1024.py [--nodes 1024]
    [--messages 20000] [--kernel calendar|heap] [--fabrics IRD,DCTCP]
"""

import argparse
import time

from repro.fabrics import ClusterConfig, fabric_by_name
from repro.sim import process_events_executed
from repro.workloads.synthetic import microbenchmark


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=1024)
    parser.add_argument("--messages", type=int, default=20_000)
    parser.add_argument("--load", type=float, default=0.7)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--kernel", type=str, default="calendar")
    parser.add_argument("--fabrics", type=str, default="IRD,DCTCP")
    args = parser.parse_args()

    print(f"generating {args.messages} messages across {args.nodes} nodes ...")
    messages = microbenchmark(
        num_nodes=args.nodes,
        link_gbps=100.0,
        load=args.load,
        message_count=args.messages,
        seed=args.seed,
    )

    for name in args.fabrics.split(","):
        config = ClusterConfig(
            num_nodes=args.nodes, link_gbps=100.0,
            seed=args.seed, kernel=args.kernel,
        )
        fabric = fabric_by_name(name, config)
        events_before = process_events_executed()
        start = time.perf_counter()
        result = fabric.run(messages, deadline_ns=50_000_000.0)
        wall = time.perf_counter() - start
        events = process_events_executed() - events_before
        mean = result.mean_latency_ns()
        print(
            f"{name:>9}: {len(result.records)}/{len(messages)} completed, "
            f"mean latency {mean:8.1f} ns | {events} events in {wall:.2f}s "
            f"({args.kernel} kernel, {events / wall / 1e3:.0f}k ev/s)"
        )


if __name__ == "__main__":
    main()
