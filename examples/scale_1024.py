"""A 1024-node scale point — the sweep size the calendar kernel unlocks.

The paper evaluates a 144-node cluster (§4.3); the ROADMAP pushes toward
production scale.  This example runs the §4.3.1 microbenchmark on a
1024-node cluster for a receiver-driven (IRD) and a reactive (DCTCP)
fabric, printing completion statistics and the simulator's events/sec so
the throughput at scale is visible.

``--shards N`` turns on conservative-parallel sharding for fabrics that
support it (EDM; note EDM's 9-bit node ids cap it at ``--nodes 512``).
``examples/scale_8192.py`` reuses :func:`run_point` as its smoke driver.

Run::

    PYTHONPATH=src python examples/scale_1024.py [--nodes 1024]
    [--messages 20000] [--kernel calendar|heap] [--fabrics IRD,DCTCP]
    [--shards 4]
"""

import argparse
import time

from repro.fabrics import ClusterConfig, fabric_by_name
from repro.sim import process_events_executed
from repro.workloads.synthetic import microbenchmark


def build_arg_parser(
    nodes: int = 1024, fabrics: str = "IRD,DCTCP"
) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=nodes)
    parser.add_argument("--messages", type=int, default=20_000)
    parser.add_argument("--load", type=float, default=0.7)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--kernel", type=str, default="calendar")
    parser.add_argument("--fabrics", type=str, default=fabrics)
    parser.add_argument(
        "--shards", type=int, default=1,
        help="conservative-parallel shards (fabrics with sharding support)",
    )
    return parser


def run_point(
    name: str,
    messages,
    *,
    nodes: int,
    seed: int,
    kernel: str,
    shards: int = 1,
    deadline_ns: float = 50_000_000.0,
) -> None:
    """Run one fabric over ``messages`` and print its scale report line."""
    config = ClusterConfig(
        num_nodes=nodes, link_gbps=100.0, seed=seed, kernel=kernel,
        shards=shards,
    )
    fabric = fabric_by_name(name, config)
    sharded = shards > 1 and fabric.supports_sharding
    events_before = process_events_executed()
    start = time.perf_counter()
    result = fabric.run(messages, deadline_ns=deadline_ns)
    wall = time.perf_counter() - start
    events = process_events_executed() - events_before
    mean = result.mean_latency_ns()
    mode = f"{shards} shards" if sharded else f"{kernel} kernel"
    print(
        f"{name:>9}: {len(result.records)}/{len(messages)} completed, "
        f"mean latency {mean:8.1f} ns | {events} events in {wall:.2f}s "
        f"({mode}, {events / wall / 1e3:.0f}k ev/s)"
    )


def main() -> None:
    args = build_arg_parser().parse_args()
    print(f"generating {args.messages} messages across {args.nodes} nodes ...")
    messages = microbenchmark(
        num_nodes=args.nodes,
        link_gbps=100.0,
        load=args.load,
        message_count=args.messages,
        seed=args.seed,
    )
    for name in args.fabrics.split(","):
        run_point(
            name, messages,
            nodes=args.nodes, seed=args.seed,
            kernel=args.kernel, shards=args.shards,
        )


if __name__ == "__main__":
    main()
