#!/usr/bin/env python3
"""Cluster-scale protocol comparison (a small Figure 8a).

Simulates a disaggregated cluster under an all-to-all 64 B read/write
microbenchmark and compares EDM against the six baseline fabrics at two
network loads, reporting latency normalized by each protocol's unloaded
latency — the paper's Figure 8a metric.

Run:  python examples/disaggregated_cluster.py  (takes a minute or two)
"""

from repro.experiments import Figure8aScale, run_figure8a_loads


def main() -> None:
    scale = Figure8aScale(num_nodes=16, message_count=6_000)
    results = run_figure8a_loads(loads=(0.2, 0.8), scale=scale)
    print("Normalized 64 B latency (mean / unloaded), per protocol:")
    for load, per_fabric in results.items():
        print(f"\n  load {load}:")
        for fabric, values in per_fabric.items():
            print(
                f"    {fabric:>9}: read {values['read']:6.2f}x  "
                f"write {values['write']:6.2f}x"
            )
    print(
        "\nExpected shape (paper): EDM stays within ~1.2-1.3x of unloaded at"
        " every load; IRD is close at low load and degrades; the reactive"
        " and credit-based fabrics inflate at high load; Fastpass is far"
        " off at every load (central-server control bottleneck)."
    )


if __name__ == "__main__":
    main()
