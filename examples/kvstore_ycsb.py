#!/usr/bin/env python3
"""Remote key-value store under YCSB (Figures 6-7).

Runs a functional KV store over the EDM DES cluster with a YCSB-A
operation stream, then prints the Figure 6 throughput comparison (EDM vs
RDMA) and the Figure 7 latency-vs-placement table.

Run:  python examples/kvstore_ycsb.py
"""

from repro.apps.kvstore import RemoteKvStore
from repro.experiments import run_figure6, run_figure7
from repro.fabrics.base import ClusterConfig
from repro.fabrics.edm import EdmCluster
from repro.memctrl.dram import DramTiming
from repro.workloads.api import workload_from_spec
from repro.workloads.streaming import YcsbSpec
from repro.workloads.ycsb import OpType


def main() -> None:
    config = ClusterConfig(num_nodes=2, link_gbps=100.0)
    cluster = EdmCluster(
        config,
        dram_timing=DramTiming(row_hit_ns=46.0, row_miss_ns=82.0),
        memory_bytes=1 << 20,
    )
    store = RemoteKvStore(cluster, compute_node=0, memory_node=1, capacity=256)

    spec = YcsbSpec(workload="A", message_count=200, keyspace=256, seed=7)
    ops = workload_from_spec(spec).materialize()
    latencies = []

    def issue(index: int = 0) -> None:
        if index >= len(ops):
            return
        op = ops[index]

        def done(completion, i=index):
            latencies.append(completion.latency_ns)
            issue(i + 1)

        if op.op == OpType.READ:
            store.get(op.key, done)
        else:
            store.put(op.key, done)

    issue(0)
    cluster.sim.run()

    mean = sum(latencies) / len(latencies)
    print(f"YCSB-A over EDM DES: {len(latencies)} ops, mean latency {mean:.1f} ns")
    print()

    print("Figure 6 — KV throughput (Mrps), EDM vs RDMA:")
    for row in run_figure6():
        print(
            f"  YCSB-{row['workload']}: EDM {row['edm_mrps']:6.2f}  "
            f"RDMA {row['rdma_mrps']:6.2f}  ({row['speedup']:.2f}x)"
        )
    print()
    print("Figure 7 — mean YCSB-A latency (ns) vs local:remote placement:")
    for row in run_figure7():
        print(
            f"  {row['split']:>7}: EDM {row['edm_ns']:7.1f}  "
            f"CXL {row['cxl_ns']:7.1f}  RDMA {row['rdma_ns']:7.1f}"
        )


if __name__ == "__main__":
    main()
