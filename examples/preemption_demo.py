#!/usr/bin/env python3
"""Intra-frame preemption demo (§3.2.3, limitation 3).

A small memory message arrives at the TX mux just after a 1500 B Ethernet
frame started transmitting.  Without preemption (standard MAC behaviour)
the memory message waits for the whole frame; with EDM's 66-bit block
multiplexing it interleaves immediately.

Run:  python examples/preemption_demo.py
"""

from repro.core.clock import PCS_CYCLE_NS
from repro.mac.frame import EthernetFrame
from repro.phy.encoder import encode_frame, encode_memory_message
from repro.phy.preemption import PreemptiveTxMux, TxPolicy, memory_latency_blocks


def run_mux(preemption: bool) -> int:
    mux = PreemptiveTxMux(policy=TxPolicy.FAIR, preemption_enabled=preemption)
    frame = EthernetFrame(dst_mac=0x1, src_mac=0x2, payload=b"\xAB" * 1500)
    mux.offer_frame(encode_frame(frame.serialize()))
    mux.offer_memory(encode_memory_message(b"\x01" * 8))  # an 8 B RREQ
    events = mux.drain()
    done = memory_latency_blocks(events)
    assert done is not None
    return done


def main() -> None:
    without = run_mux(preemption=False)
    with_p = run_mux(preemption=True)
    print("8 B memory message behind a 1500 B frame on the same link:")
    print(
        f"  no preemption (MAC behaviour): memory blocks done at cycle "
        f"{without} ({without * PCS_CYCLE_NS:.0f} ns)"
    )
    print(
        f"  EDM intra-frame preemption   : memory blocks done at cycle "
        f"{with_p} ({with_p * PCS_CYCLE_NS:.0f} ns)"
    )
    print(f"  improvement: {without / max(with_p, 1):.0f}x lower blocking latency")


if __name__ == "__main__":
    main()
