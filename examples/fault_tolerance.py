#!/usr/bin/env python3
"""Fault tolerance demo (§3.3): surviving a switch failure.

EDM's switch holds scheduler state, so the paper replicates it: hosts
mirror every outgoing message on two interfaces, the primary and backup
switches compute on identical demand streams, and receivers keep the
first copy of each message.  This demo shows (1) the two schedulers
staying in lockstep, and (2) traffic continuing through the backup after
the primary dies, with zero scheduler-state rebuild.

Run:  python examples/fault_tolerance.py
"""

import dataclasses

from repro.core.scheduler import CentralScheduler, Demand, SchedulerConfig
from repro.switchfab.failover import (
    DuplicateSuppressor,
    FailoverController,
    MirroredSender,
)


def main() -> None:
    config = SchedulerConfig(num_ports=8, link_gbps=100.0, chunk_bytes=256)
    primary = CentralScheduler(config)
    backup = CentralScheduler(config)
    controller = FailoverController()

    sender = MirroredSender(
        primary=lambda d: primary.notify(dataclasses.replace(d)),
        backup=lambda d: backup.notify(dataclasses.replace(d)),
    )

    print("Mirroring 12 demand notifications to both switches...")
    for i in range(12):
        sender.send(Demand(
            src=i % 4, dst=4 + (i % 4), message_id=i % 256,
            total_bytes=256 * (1 + i % 3), notified_at=float(i),
        ))
    print(f"  primary pending: {primary.pending_demands}, "
          f"backup pending: {backup.pending_demands}  (identical state)")

    p = [(g.grant.src, g.grant.dst, g.grant.chunk_bytes)
         for g in primary.schedule(20.0)]
    b = [(g.grant.src, g.grant.dst, g.grant.chunk_bytes)
         for g in backup.schedule(20.0)]
    print(f"  matching round on both: identical grants? {p == b}  ({len(p)} grants)")

    print("\nReceiver-side duplicate suppression:")
    delivered = []
    rx = DuplicateSuppressor(delivered.append)
    for uid, payload in ((1, "read#1"), (1, "read#1"), (2, "write#2"), (2, "write#2")):
        rx.receive(uid, payload)
    print(f"  4 copies received -> {rx.delivered} delivered, "
          f"{rx.suppressed} suppressed: {delivered}")

    print("\nPrimary switch fails...")
    controller.fail_primary()
    print(f"  active path: {controller.active_path} "
          f"(scheduler state already replicated — no rebuild needed)")
    next_round_at = backup.next_release_after(20.0) or 40.0
    more = backup.schedule(next_round_at)
    print(f"  backup keeps granting: {len(more)} grants issued post-failover")


if __name__ == "__main__":
    main()
