"""An 8192-node scale point, with a conservative-parallel EDM demo.

Two halves, both riding :func:`scale_1024.run_point` as the driver:

1. The queueing-substrate fabrics (IRD, DCTCP) at 8192 nodes — node
   count is unbounded for them, so this is the raw "how far does the
   calendar kernel take us" demo.
2. EDM serial vs ``--shards N``: EDM's wire format carries 9-bit node
   ids (§3.1.4), so its cluster tops out at 512 nodes; its scale axis is
   event density, and sharding splits that event load across forked
   workers.  Both runs print the identical completion stats — sharding
   is bit-identical by contract (docs/DETERMINISM.md) — so the only
   difference to observe is the events/sec.

Run::

    PYTHONPATH=src python examples/scale_8192.py [--nodes 8192]
    [--messages 20000] [--kernel calendar|heap] [--shards 4]
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from scale_1024 import build_arg_parser, run_point  # noqa: E402

from repro.workloads.synthetic import microbenchmark  # noqa: E402

#: EDM wire-format ceiling: 9-bit node ids (§3.1.4).
EDM_MAX_NODES = 512


def main() -> None:
    parser = build_arg_parser(nodes=8192, fabrics="IRD,DCTCP")
    args = parser.parse_args()
    shards = args.shards if args.shards > 1 else 4

    print(f"generating {args.messages} messages across {args.nodes} nodes ...")
    messages = microbenchmark(
        num_nodes=args.nodes,
        link_gbps=100.0,
        load=args.load,
        message_count=args.messages,
        seed=args.seed,
    )
    for name in args.fabrics.split(","):
        run_point(
            name, messages,
            nodes=args.nodes, seed=args.seed, kernel=args.kernel,
        )

    print(
        f"\nEDM at its wire-format ceiling ({EDM_MAX_NODES} nodes), "
        f"serial vs {shards} shards ..."
    )
    edm_messages = microbenchmark(
        num_nodes=EDM_MAX_NODES,
        link_gbps=100.0,
        load=0.9,
        message_count=args.messages,
        seed=args.seed,
    )
    for n in (1, shards):
        run_point(
            "EDM", edm_messages,
            nodes=EDM_MAX_NODES, seed=args.seed, kernel=args.kernel,
            shards=n,
        )


if __name__ == "__main__":
    main()
