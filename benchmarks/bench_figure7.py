"""Bench F7 — regenerates Figure 7 (YCSB latency vs local:remote split)."""

from repro.experiments import run_figure7


def test_figure7(benchmark, bench_jobs):
    rows = benchmark(lambda: run_figure7(jobs=bench_jobs))
    print("\nFigure 7 — mean YCSB-A latency (ns) vs placement:")
    for row in rows:
        print(
            f"  {row['split']:>7}: EDM {row['edm_ns']:7.1f}  "
            f"CXL {row['cxl_ns']:7.1f}  RDMA {row['rdma_ns']:7.1f}"
        )
    for row in rows:
        assert row["edm_ns"] <= 1.3 * row["cxl_ns"]
        assert row["edm_ns"] < row["rdma_ns"]
