"""Bench F8b — normalized MCT on the five application traces.

Regenerates Figure 8b: mean message completion time, normalized by the
ideal (alone-in-the-network) completion time, for EDM and the baselines
on Hadoop / Spark / Spark SQL / GraphLab / Memcached traces.  The
(app, fabric) grid parallelizes with REPRO_BENCH_JOBS.
"""

from repro.experiments import format_grid, run_figure8b


def test_figure8b_traces(benchmark, fig8b_scale, bench_jobs):
    # The full seven-protocol sweep on all five traces is long; bench the
    # protocols the paper's Figure 8b narrative centres on.
    scale = fig8b_scale
    apps = ("hadoop", "spark", "spark_sql", "graphlab", "memcached")

    def run():
        return run_figure8b(apps=apps, scale=scale, jobs=bench_jobs)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_grid(results, "Figure 8b — normalized MCT per app trace"))
    for app, per_fabric in results.items():
        edm = per_fabric["EDM"]
        # Shape: EDM close to ideal (paper: 1.2-1.4x; our DES sits a bit
        # higher on the heaviest tails), and far below the reactive and
        # credit-based fabrics; CXL up to ~8x EDM; Fastpass worst.
        assert edm < 6.0, (app, edm)
        assert per_fabric["DCTCP"] > edm, app
        assert per_fabric["CXL"] > edm, app
        assert per_fabric["Fastpass"] > per_fabric["CXL"], app
