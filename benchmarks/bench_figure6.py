"""Bench F6 — regenerates Figure 6 (KV throughput, EDM vs RDMA, YCSB A/B/F)."""

from repro.experiments import run_figure6


def test_figure6(benchmark, bench_jobs):
    rows = benchmark(lambda: run_figure6(jobs=bench_jobs))
    print("\nFigure 6 — million requests/sec (100 Gbps):")
    for row in rows:
        print(
            f"  YCSB-{row['workload']}: EDM {row['edm_mrps']:6.2f}  "
            f"RDMA {row['rdma_mrps']:6.2f}  speedup {row['speedup']:.2f}x"
        )
    assert all(row["speedup"] > 1.3 for row in rows)
