"""Bench F8a — normalized latency vs load, all seven protocols.

Regenerates Figure 8a's two load-sweep panels (reads and writes) and the
mixed write:read panel at load 0.8.  Run with ``--benchmark-only``; scale
with REPRO_BENCH_NODES / REPRO_BENCH_MESSAGES and parallelize the
(load, fabric) grid with REPRO_BENCH_JOBS.
"""

from repro.experiments import format_grid, run_figure8a_loads, run_figure8a_mix


def test_figure8a_load_sweep(benchmark, fig8a_scale, bench_jobs):
    loads = (0.2, 0.5, 0.8, 0.9)

    def run():
        return run_figure8a_loads(loads=loads, scale=fig8a_scale, jobs=bench_jobs)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_grid(results, "Figure 8a — normalized 64 B latency vs load"))
    # Shape checks: EDM within its paper bound at every load; the reactive
    # pack degrades at high load while EDM does not.
    for load, per_fabric in results.items():
        assert per_fabric["EDM"]["read"] < 1.45
        assert per_fabric["EDM"]["write"] < 1.5
    high = results[0.9]
    assert high["DCTCP"]["read"] > high["EDM"]["read"]
    assert high["CXL"]["read"] > high["EDM"]["read"]
    assert high["Fastpass"]["read"] > 5.0


def test_figure8a_mixed_ratios(benchmark, fig8a_scale, bench_jobs):
    mixes = ((100, 0), (50, 50), (0, 100))

    def run():
        return run_figure8a_mix(
            mixes=mixes, load=0.8, scale=fig8a_scale, jobs=bench_jobs
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_grid(results, "Figure 8a — mixed write:read at load 0.8"))
    for mix, per_fabric in results.items():
        assert per_fabric["EDM"] < 1.5  # paper: within 1.3x for mixes
