"""Shared benchmark configuration.

Benchmarks regenerate every table and figure of the paper's evaluation at
a reduced-but-representative scale (32 nodes instead of 144, tens of
thousands of messages) so the full suite completes in minutes.  Scale up
via the REPRO_BENCH_NODES / REPRO_BENCH_MESSAGES environment variables to
approach the paper's configuration, and fan the experiment grid out over
worker processes with REPRO_BENCH_JOBS (results are bit-identical to a
serial run — the runner keys results by cell, not completion order).
"""

import os

import pytest

from repro.experiments import Figure8aScale, Figure8bScale

BENCH_NODES = int(os.environ.get("REPRO_BENCH_NODES", "16"))
BENCH_MESSAGES = int(os.environ.get("REPRO_BENCH_MESSAGES", "4000"))
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))


@pytest.fixture(scope="session")
def bench_jobs():
    return BENCH_JOBS


@pytest.fixture(scope="session")
def fig8a_scale():
    return Figure8aScale(
        num_nodes=BENCH_NODES,
        message_count=BENCH_MESSAGES,
        deadline_ns=5_000_000_000.0,
    )


@pytest.fixture(scope="session")
def fig8b_scale():
    # Heavy-tailed traces generate far more wire bytes per message than the
    # 64 B microbenchmark; a smaller message count keeps the 5-app x
    # 7-protocol sweep to minutes.
    return Figure8bScale(
        num_nodes=min(BENCH_NODES, 16),
        message_count=max(1000, BENCH_MESSAGES // 10),
        load=0.6,
        deadline_ns=20_000_000_000.0,
    )
