"""Ablation benches for the design choices DESIGN.md §5 calls out.

* chunk size vs latency (§3.1.3),
* X — max active notifications per pair (§4.3: X=3 best),
* FCFS vs SRPT under light- vs heavy-tailed workloads (§3.1.1),
* PIM iteration budget vs matching quality (§3.1.2),
* early port release on/off (§3.1.1 step 7),
* intra-frame preemption on/off (§3.2.3),
* incast stress (the limitation-6 scenario).

Every family runs as a registered experiment through the parallel
runner; set REPRO_BENCH_JOBS to fan a family's settings out over worker
processes.
"""

from repro.experiments import run_ablations

NODES = 16


def family(name, jobs):
    return run_ablations(families=(name,), num_nodes=NODES, jobs=jobs)[name]


def test_ablation_chunk_size(benchmark, bench_jobs):
    def run():
        return family("chunk", bench_jobs)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nchunk size -> normalized latency:", {k: round(v, 3) for k, v in results.items()})
    assert all(v < 4.0 for v in results.values())


def test_ablation_x_active_notifications(benchmark, bench_jobs):
    def run():
        return family("x_active", bench_jobs)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nX -> normalized latency:", {k: round(v, 3) for k, v in results.items()})
    # §4.3: X=3 works best; at minimum it should not lose to X=1.
    assert results["3"] <= results["1"] * 1.05


def test_ablation_fcfs_vs_srpt(benchmark, bench_jobs):
    def run():
        return family("policy", bench_jobs)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\ntail/policy -> normalized:", {k: round(v, 3) for k, v in results.items()})
    # §3.1.1 property 4: SRPT helps heavy-tailed workloads.
    assert results["heavy/SRPT"] <= results["heavy/FCFS"] * 1.1


def test_ablation_pim_iterations(benchmark, bench_jobs):
    def run():
        return family("pim_iters", bench_jobs)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nPIM iterations -> normalized:", {k: round(v, 3) for k, v in results.items()})
    # More iterations -> better (or equal) matching -> no worse latency.
    assert results["maximal"] <= results["1"] * 1.05


def test_ablation_early_release(benchmark, bench_jobs):
    def run():
        return family("early_release", bench_jobs)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nport release -> normalized:", {k: round(v, 3) for k, v in results.items()})
    # §3.1.1 step 7: waiting for full reception wastes bandwidth.
    assert results["early"] <= results["late"]


def test_ablation_preemption(benchmark, bench_jobs):
    def run():
        return family("preemption", bench_jobs)

    results = benchmark(run)
    print(f"\npreemption off/on -> memory done at block {results}")
    assert results["on"] * 20 < results["off"]


def test_ablation_incast_stress(benchmark, bench_jobs):
    def run():
        return family("incast", bench_jobs)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nincast fraction -> EDM normalized:", {k: round(v, 3) for k, v in results.items()})
    # EDM's proactive scheduler keeps even heavy incast bounded.
    assert all(v < 2.5 for v in results.values())
