"""Ablation benches for the design choices DESIGN.md §5 calls out.

* chunk size vs latency (§3.1.3),
* X — max active notifications per pair (§4.3: X=3 best),
* FCFS vs SRPT under light- vs heavy-tailed workloads (§3.1.1),
* PIM iteration budget vs matching quality (§3.1.2),
* early port release on/off (§3.1.1 step 7),
* intra-frame preemption on/off (§3.2.3),
* incast stress (the limitation-6 scenario).
"""

import pytest

from repro.core.scheduler import Policy
from repro.fabrics.base import ClusterConfig
from repro.fabrics.edm import EdmFabric
from repro.workloads import SyntheticSpec, generate, fixed_size
from repro.workloads.distributions import HADOOP_SORT

NODES = 16
CONFIG_KW = dict(link_gbps=100.0)


def workload(load=0.8, count=6000, cdf=None, seed=3, incast=0.0):
    return generate(SyntheticSpec(
        num_nodes=NODES, link_gbps=100.0, load=load, message_count=count,
        size_cdf=cdf or fixed_size(64), seed=seed, incast_fraction=incast,
    ))


def run_normalized(fabric, messages):
    result = fabric.run_with_baselines(messages, deadline_ns=5_000_000_000)
    return result.mean_normalized_latency()


def test_ablation_chunk_size(benchmark):
    msgs = workload(cdf=HADOOP_SORT, count=3000)

    def run():
        out = {}
        for chunk in (64, 128, 256, 512, 1024):
            config = ClusterConfig(num_nodes=NODES, chunk_bytes=chunk, **CONFIG_KW)
            out[chunk] = run_normalized(EdmFabric(config), msgs)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nchunk size -> normalized latency:", {k: round(v, 3) for k, v in results.items()})
    assert all(v < 4.0 for v in results.values())


def test_ablation_x_active_notifications(benchmark):
    msgs = workload(load=0.8)

    def run():
        out = {}
        for x in (1, 2, 3, 4, 8):
            config = ClusterConfig(num_nodes=NODES, max_active_per_pair=x, **CONFIG_KW)
            out[x] = run_normalized(EdmFabric(config), msgs)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nX -> normalized latency:", {k: round(v, 3) for k, v in results.items()})
    # §4.3: X=3 works best; at minimum it should not lose to X=1.
    assert results[3] <= results[1] * 1.05


def test_ablation_fcfs_vs_srpt(benchmark):
    light = workload(cdf=fixed_size(64), count=4000)
    heavy = workload(cdf=HADOOP_SORT, count=4000)
    config = ClusterConfig(num_nodes=NODES, **CONFIG_KW)

    def run():
        return {
            ("light", "FCFS"): run_normalized(EdmFabric(config, policy=Policy.FCFS), light),
            ("light", "SRPT"): run_normalized(EdmFabric(config, policy=Policy.SRPT), light),
            ("heavy", "FCFS"): run_normalized(EdmFabric(config, policy=Policy.FCFS), heavy),
            ("heavy", "SRPT"): run_normalized(EdmFabric(config, policy=Policy.SRPT), heavy),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n(workload, policy) -> normalized:", {k: round(v, 3) for k, v in results.items()})
    # §3.1.1 property 4: SRPT helps heavy-tailed workloads.
    assert results[("heavy", "SRPT")] <= results[("heavy", "FCFS")] * 1.1


def test_ablation_pim_iterations(benchmark):
    msgs = workload(load=0.8)
    config = ClusterConfig(num_nodes=NODES, **CONFIG_KW)

    def run():
        return {
            iters if iters else "maximal": run_normalized(
                EdmFabric(config, max_iterations=iters), msgs
            )
            for iters in (1, 2, None)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nPIM iterations -> normalized:", {k: round(v, 3) for k, v in results.items()})
    # More iterations -> better (or equal) matching -> no worse latency.
    assert results["maximal"] <= results[1] * 1.05


def test_ablation_early_release(benchmark):
    msgs = workload(load=0.8)
    config = ClusterConfig(num_nodes=NODES, **CONFIG_KW)

    def run():
        return {
            "early": run_normalized(EdmFabric(config, early_release=True), msgs),
            "late": run_normalized(EdmFabric(config, early_release=False), msgs),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nport release -> normalized:", {k: round(v, 3) for k, v in results.items()})
    # §3.1.1 step 7: waiting for full reception wastes bandwidth.
    assert results["early"] <= results["late"]


def test_ablation_preemption(benchmark):
    from repro.mac.frame import EthernetFrame
    from repro.phy.encoder import encode_frame, encode_memory_message
    from repro.phy.preemption import PreemptiveTxMux, memory_latency_blocks

    def run():
        out = {}
        for enabled in (False, True):
            mux = PreemptiveTxMux(preemption_enabled=enabled)
            frame = EthernetFrame(dst_mac=1, src_mac=2, payload=b"\x00" * 1500)
            mux.offer_frame(encode_frame(frame.serialize()))
            mux.offer_memory(encode_memory_message(b"\x01" * 8))
            out[enabled] = memory_latency_blocks(mux.drain())
        return out

    results = benchmark(run)
    print(f"\npreemption off/on -> memory done at block {results}")
    assert results[True] * 20 < results[False]


def test_ablation_incast_stress(benchmark):
    config = ClusterConfig(num_nodes=NODES, **CONFIG_KW)

    def run():
        out = {}
        for frac in (0.0, 0.25, 0.5):
            msgs = workload(load=0.7, count=4000, incast=frac)
            out[frac] = run_normalized(EdmFabric(config), msgs)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nincast fraction -> EDM normalized:", {k: round(v, 3) for k, v in results.items()})
    # EDM's proactive scheduler keeps even heavy incast bounded.
    assert all(v < 2.5 for v in results.values())
