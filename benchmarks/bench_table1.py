"""Bench T1 — regenerates Table 1 (unloaded fabric latency, four stacks).

Prints the same bottom-line rows the paper reports and asserts the
headline values; the benchmark times the full table computation.
"""

from repro.experiments import run_experiment
from repro.latency.table1 import format_table1, latency_ratios


def test_table1(benchmark):
    rows = benchmark(lambda: run_experiment("table1"))
    print()
    print(format_table1())
    ratios = latency_ratios()
    print(
        "EDM advantage — read: "
        + ", ".join(f"{k} {v['read']:.1f}x" for k, v in ratios.items())
    )
    print(
        "EDM advantage — write: "
        + ", ".join(f"{k} {v['write']:.1f}x" for k, v in ratios.items())
    )
    assert abs(rows["EDM"]["read_total_ns"] - 299.52) < 0.01
    assert abs(rows["EDM"]["write_total_ns"] - 296.96) < 0.01


def test_table1_testbed_des(benchmark):
    """The DES counterpart: a 25 GbE two-node testbed read/write."""
    from repro.fabrics.base import ClusterConfig
    from repro.fabrics.edm import EdmFabric

    fabric = EdmFabric(ClusterConfig(num_nodes=2, link_gbps=25.0))

    def run():
        read = fabric.measure_unloaded(64, is_read=True)
        write = fabric.measure_unloaded(64, is_read=False)
        return read, write

    read, write = benchmark(run)
    print(f"\nDES testbed: 64 B read {read:.1f} ns, write {write:.1f} ns "
          f"(paper: 299.52 / 296.96 ns; DES omits PMA/PMD+transceiver stages)")
    assert 100 < read < 500 and 100 < write < 500
