"""Bench kernel — calendar vs heap event kernel on the figure-8a sweep.

Runs the smoke sweep under both kernels (asserting bit-identical
results), prints the events/sec comparison, and writes the top-level
``BENCH_kernel.json`` artifact that tracks the perf trajectory.  Scale
with REPRO_BENCH_NODES / REPRO_BENCH_MESSAGES; parallelize with
REPRO_BENCH_JOBS.
"""

from repro.experiments import (
    format_kernel_bench,
    run_kernel_bench,
    write_kernel_bench,
)

from conftest import BENCH_JOBS, BENCH_MESSAGES, BENCH_NODES


def test_kernel_bench(benchmark):
    def run():
        return run_kernel_bench(
            num_nodes=min(BENCH_NODES, 32),
            message_count=BENCH_MESSAGES,
            loads=(0.3, 0.8),
            jobs=BENCH_JOBS,
        )

    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_kernel_bench(payload))
    write_kernel_bench(payload)
    assert payload["results_identical"]
    # The raw kernel must beat the heap clearly once the queue is deep.
    deepest = payload["kernel_microbench"]["rows"][-1]
    assert deepest["speedup"] > 1.5
