"""Bench F5 — regenerates Figure 5 (EDM cycle-level latency breakdown)."""

from repro.experiments import run_experiment
from repro.latency.breakdown import format_breakdown, read_breakdown, write_breakdown


def test_figure5(benchmark):
    totals = benchmark(lambda: run_experiment("figure5"))
    print()
    print(format_breakdown(read_breakdown(), "Figure 5 — 64 B READ"))
    print(format_breakdown(write_breakdown(), "Figure 5 — 64 B WRITE"))
    assert 250 < totals["read_total_ns"] < 350
    assert 250 < totals["write_total_ns"] < 350
